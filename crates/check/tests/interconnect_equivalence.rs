//! The interconnect-equivalence wall: the banked home-node directory
//! is a different *timing* for the same architecture, not a different
//! correctness story. On machine sizes both fabrics support (≤16
//! processors) every configuration must, under both the snooping bus
//! and the directory:
//!
//! * keep the two engines byte-identical (same `MachineStats`, same
//!   trace, same final cycle) — the directory's bank scheduling must
//!   not leak nondeterminism into the event engine;
//! * satisfy the serializability oracle — lock-free execution stays
//!   lock-free when invalidations are directed instead of broadcast;
//! * commit the same shared-memory sums — the fabrics may serialize
//!   critical sections in different orders at different cycles, but
//!   the committed commutative state is fabric-invariant.
//!
//! Stats, cycle counts, and serialization orders legitimately differ
//! across fabrics (that difference is the experiment in
//! `exp_scalability`); nothing here compares those.

use tlr_check::diff::check_engines;
use tlr_check::fuzz::arbitrary_config;
use tlr_check::oracle::{OracleWorkload, LOCK};
use tlr_check::{prop, Source};
use tlr_mem::addr::Addr;
use tlr_sim::config::{Interconnect, MachineConfig, Scheme};
use tlr_sim::fault::FaultConfig;
use tlr_sim::pool::Pool;

/// Runs `w` under `cfg` and returns the committed fabric-invariant
/// memory image: every shared word plus the lock word.
fn committed_words(w: &OracleWorkload, cfg: &MachineConfig) -> Result<Vec<u64>, String> {
    let mut m = w.build_machine(cfg);
    m.run().map_err(|e| format!("failed to quiesce: {e}"))?;
    let mut words: Vec<u64> =
        (0..w.num_words).map(|i| m.final_word(w.word_addr(i))).collect();
    words.push(m.final_word(Addr(LOCK)));
    Ok(words)
}

/// One differential case: a fuzzed configuration and workload, taken
/// through both fabrics for each paper scheme.
fn fabric_case(s: &mut Source) -> Result<(), String> {
    let cfg = arbitrary_config(s);
    let w = OracleWorkload::arbitrary(s, cfg.num_procs, 4);
    for scheme in [Scheme::Base, Scheme::Sle, Scheme::Tlr] {
        let mut images = Vec::new();
        for interconnect in [Interconnect::Snooping, Interconnect::Directory] {
            let mut c = cfg.clone();
            c.scheme = scheme;
            c.interconnect = interconnect;
            check_engines(|engine| {
                let mut c = c.clone();
                c.engine = engine;
                w.build_machine(&c)
            })
            .map_err(|e| {
                format!(
                    "engine divergence under {interconnect} (scheme {scheme}): {e}\n    \
                     config: {c:?}\n    workload: {w:?}"
                )
            })?;
            w.check(&c).map_err(|e| {
                format!(
                    "oracle violation under {interconnect} (scheme {scheme}): {e}\n    \
                     config: {c:?}\n    workload: {w:?}"
                )
            })?;
            images.push(committed_words(&w, &c).map_err(|e| {
                format!("{interconnect} (scheme {scheme}): {e}\n    config: {c:?}")
            })?);
        }
        if images[0] != images[1] {
            return Err(format!(
                "committed memory differs across fabrics (scheme {scheme}): snooping \
                 {:?} != directory {:?}\n    config: {cfg:?}\n    workload: {w:?}",
                images[0], images[1]
            ));
        }
    }
    Ok(())
}

#[test]
fn directory_matches_snooping_on_fuzzed_configs() {
    // 18 fuzzed configs x BASE/SLE/TLR x both fabrics, each fabric
    // checked with both engines and the serializability oracle;
    // `TLR_CHECK_CASES` scales the sweep.
    let mut cfg = prop::Config::from_env(18);
    cfg.max_shrink_checks = 32;
    prop::check_with_pool("interconnect_equivalence", cfg, &Pool::from_env(), fabric_case);
}

#[test]
fn directory_engines_agree_under_explicit_chaos() {
    // Guaranteed-chaos directory cells: every fault kind active,
    // intensity cycling through the full range, at processor counts
    // the bus cannot reach.
    for (i, procs) in [(0u32, 8usize), (1, 12), (2, 16), (3, 16)] {
        let fault_seed = 0xd1_c7_0a05_u64.wrapping_add(u64::from(i) * 0x9e37_79b9);
        let level = 1 + i % FaultConfig::MAX_INTENSITY;
        for scheme in [Scheme::Base, Scheme::Sle, Scheme::Tlr] {
            let mut src = Source::from_seed(fault_seed);
            let w = OracleWorkload::arbitrary_with_procs(&mut src, procs, 2);
            let cfg = MachineConfig::builder()
                .scheme(scheme)
                .procs(procs)
                .interconnect(Interconnect::Directory)
                .seed(src.next_raw())
                .max_cycles(8_000_000)
                .faults(FaultConfig::intensity(fault_seed, level))
                .build();
            check_engines(|engine| {
                let mut c = cfg.clone();
                c.engine = engine;
                w.build_machine(&c)
            })
            .unwrap_or_else(|e| {
                panic!(
                    "directory chaos divergence (scheme {scheme}, {procs} procs, fault \
                     seed {fault_seed:#x}, intensity {level}): {e}\n    workload: {w:?}"
                )
            });
        }
    }
}

#[test]
fn directory_accepts_the_paper_configuration_at_sixteen_procs() {
    // The largest machine both fabrics support, on the paper-default
    // geometry: full oracle acceptance under the directory for every
    // scheme, with a contended workload (all threads share the words).
    let mut src = Source::from_seed(0x16_d1_c7);
    let w = OracleWorkload::arbitrary_with_procs(&mut src, 16, 2);
    for scheme in Scheme::ALL {
        let mut cfg = MachineConfig::paper_default(scheme, 16);
        cfg.interconnect = Interconnect::Directory;
        cfg.max_cycles = 50_000_000;
        w.check(&cfg).unwrap_or_else(|e| panic!("{scheme}: {e}"));
    }
}
