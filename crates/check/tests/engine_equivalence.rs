//! The engine-equivalence wall: the discrete-event engine must be
//! byte-identical to the cycle-stepped oracle — same `MachineStats`,
//! same trace events, same final cycle — on fuzzed configurations
//! (including chaos streams), on explicit fault-intensity sweeps, and
//! on the workload families behind every figure/table binary.

use tlr_check::diff::check_engines;
use tlr_check::fuzz::arbitrary_config;
use tlr_check::oracle::OracleWorkload;
use tlr_check::{prop, Source};
use tlr_core::run::{build_machine, WorkloadSpec};
use tlr_sim::config::{MachineConfig, Scheme};
use tlr_sim::fault::FaultConfig;
use tlr_sim::pool::Pool;
use tlr_workloads::{apps, micro};

/// One differential case: a fuzzed configuration (geometry, latencies,
/// retention, timestamp width, jitter, faults) and a fuzzed oracle
/// workload, compared across both engines for each paper scheme.
fn diff_case(s: &mut Source) -> Result<(), String> {
    let cfg = arbitrary_config(s);
    let w = OracleWorkload::arbitrary(s, cfg.num_procs, 4);
    for scheme in [Scheme::Base, Scheme::Sle, Scheme::Tlr] {
        let mut c = cfg.clone();
        c.scheme = scheme;
        check_engines(|engine| {
            let mut c = c.clone();
            c.engine = engine;
            w.build_machine(&c)
        })
        .map_err(|e| format!("scheme {scheme}: {e}\n    config: {c:?}\n    workload: {w:?}"))?;
    }
    Ok(())
}

#[test]
fn event_engine_matches_oracle_on_fuzzed_configs() {
    // 35 fuzzed configs x BASE/SLE/TLR = 105 engine comparisons by
    // default; `TLR_CHECK_CASES` scales the sweep. Roughly a third of
    // the configs draw an active chaos stream (see
    // `fuzz::arbitrary_config`), so spurious aborts, bus reorders and
    // network delays are all exercised differentially.
    let mut cfg = prop::Config::from_env(35);
    cfg.max_shrink_checks = 48;
    prop::check_with_pool("engine_equivalence", cfg, &Pool::from_env(), diff_case);
}

#[test]
fn event_engine_matches_oracle_under_explicit_chaos() {
    // Guaranteed-chaos cells (the fuzzed sweep only reaches faults
    // probabilistically): every fault kind active, intensity cycling
    // through the full range, across the three paper schemes.
    for i in 0..4u32 {
        let fault_seed = 0x0ddc_0ffe_u64.wrapping_add(u64::from(i) * 0x9e37_79b9);
        let level = 1 + i % FaultConfig::MAX_INTENSITY;
        for scheme in [Scheme::Base, Scheme::Sle, Scheme::Tlr] {
            let mut src = Source::from_seed(fault_seed);
            let procs = src.usize_in(2..=3);
            let w = OracleWorkload::arbitrary(&mut src, procs, 3);
            let cfg = MachineConfig::builder()
                .scheme(scheme)
                .procs(procs)
                .seed(src.next_raw())
                .max_cycles(8_000_000)
                .faults(FaultConfig::intensity(fault_seed, level))
                .build();
            check_engines(|engine| {
                let mut c = cfg.clone();
                c.engine = engine;
                w.build_machine(&c)
            })
            .unwrap_or_else(|e| {
                panic!(
                    "chaos divergence (scheme {scheme}, fault seed {fault_seed:#x}, \
                     intensity {level}): {e}\n    workload: {w:?}"
                )
            });
        }
    }
}

#[test]
fn event_engine_matches_oracle_on_binary_workloads() {
    // Small-scale instances of the workload families behind the
    // figure/table/experiment binaries; `run_cell` builds the same
    // machines at full scale.
    let workloads: Vec<(&str, Box<dyn WorkloadSpec>)> = vec![
        ("multiple_counter", Box::new(micro::multiple_counter(3, 24))),
        ("single_counter", Box::new(micro::single_counter(3, 24))),
        ("doubly_linked_list", Box::new(micro::doubly_linked_list(3, 9))),
        ("mp3d", Box::new(apps::mp3d(3, 6, 16))),
        ("mp3d_coarse", Box::new(apps::mp3d_coarse(3, 6, 16))),
        ("barnes", Box::new(apps::barnes(3, 4, 3))),
        ("radiosity", Box::new(apps::radiosity(3, 4, 4))),
        ("water_nsq", Box::new(apps::water_nsq(3, 4, 4))),
        ("ocean_cont", Box::new(apps::ocean_cont(3, 2, 4))),
        ("raytrace", Box::new(apps::raytrace(3, 6))),
    ];
    for scheme in [Scheme::Base, Scheme::Sle, Scheme::Tlr] {
        for (name, w) in &workloads {
            let mut cfg = MachineConfig::paper_default(scheme, 3);
            cfg.max_cycles = 60_000_000;
            cfg.seed = 0xe4e2_5eed;
            check_engines(|engine| {
                let mut c = cfg.clone();
                c.engine = engine;
                let mut m = build_machine(&c, w.as_ref());
                m.enable_trace_with_capacity(1 << 14);
                m
            })
            .unwrap_or_else(|e| panic!("{name}/{scheme}: {e}"));
        }
    }
}
