//! Greedy choice-sequence shrinking.
//!
//! The shrinker never sees generated values: it edits the raw choice
//! sequence a failing case recorded and asks the caller whether the
//! regenerated case still fails. Three transformation families are
//! tried, largest-first, and the first one that keeps the failure is
//! accepted (greedy descent):
//!
//! 1. delete a block of choices (halving block sizes down to 1);
//! 2. zero a block of choices;
//! 3. lower a single choice (to 0, to half, to one less).
//!
//! Every accepted edit strictly decreases `(len, sum)` in
//! lexicographic order, so the descent terminates; `max_checks` bounds
//! the number of oracle calls for expensive properties.

/// Outcome of a minimization run.
#[derive(Debug, Clone)]
pub struct Minimized {
    /// The smallest failing choice sequence found.
    pub choices: Vec<u64>,
    /// How many candidate sequences were tried.
    pub checks: u64,
}

/// Greedily minimizes `choices` under the predicate `still_fails`
/// (which must return `true` for the input sequence's failure to be
/// preserved). At most `max_checks` candidate evaluations are spent.
pub fn minimize(
    choices: &[u64],
    mut still_fails: impl FnMut(&[u64]) -> bool,
    max_checks: u64,
) -> Minimized {
    let mut cur: Vec<u64> = choices.to_vec();
    let mut checks = 0u64;
    let mut try_candidate = |cand: &[u64], checks: &mut u64| -> bool {
        if *checks >= max_checks {
            return false;
        }
        *checks += 1;
        still_fails(cand)
    };

    'outer: loop {
        if checks >= max_checks {
            break;
        }
        // Pass 1: delete blocks, large to small.
        let mut block = (cur.len() / 2).max(1);
        while block >= 1 && !cur.is_empty() {
            let mut start = 0;
            while start + block <= cur.len() {
                let mut cand = cur.clone();
                cand.drain(start..start + block);
                if try_candidate(&cand, &mut checks) {
                    cur = cand;
                    continue 'outer;
                }
                start += block;
            }
            if block == 1 {
                break;
            }
            block /= 2;
        }
        // Pass 2: zero blocks, large to small.
        let mut block = (cur.len() / 2).max(1);
        while block >= 1 && !cur.is_empty() {
            let mut start = 0;
            while start + block <= cur.len() {
                if cur[start..start + block].iter().any(|&v| v != 0) {
                    let mut cand = cur.clone();
                    cand[start..start + block].iter_mut().for_each(|v| *v = 0);
                    if try_candidate(&cand, &mut checks) {
                        cur = cand;
                        continue 'outer;
                    }
                }
                start += block;
            }
            if block == 1 {
                break;
            }
            block /= 2;
        }
        // Pass 3: lower individual values.
        for i in 0..cur.len() {
            let v = cur[i];
            if v == 0 {
                continue;
            }
            for lowered in [0, v / 2, v - 1] {
                if lowered >= v {
                    continue;
                }
                let mut cand = cur.clone();
                cand[i] = lowered;
                if try_candidate(&cand, &mut checks) {
                    cur = cand;
                    continue 'outer;
                }
            }
        }
        break; // fixpoint: no transformation preserved the failure
    }
    Minimized { choices: cur, checks }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizes_to_single_threshold_value() {
        // Fails iff any choice is >= 100: the minimum counterexample
        // is the single sequence [100].
        let start: Vec<u64> = vec![3, 250, 17, 99, 4000, 1];
        let m = minimize(&start, |c| c.iter().any(|&v| v >= 100), 100_000);
        assert_eq!(m.choices, vec![100]);
    }

    #[test]
    fn minimizes_length_when_sum_matters() {
        // Fails iff at least 3 nonzero choices exist.
        let start: Vec<u64> = (1..=20).collect();
        let m = minimize(&start, |c| c.iter().filter(|&&v| v != 0).count() >= 3, 100_000);
        assert_eq!(m.choices, vec![1, 1, 1]);
    }

    #[test]
    fn respects_check_budget() {
        let start: Vec<u64> = (1..=64).collect();
        let m = minimize(&start, |c| !c.is_empty(), 10);
        assert!(m.checks <= 10);
        assert!(!m.choices.is_empty(), "failure must be preserved");
    }

    #[test]
    fn already_minimal_input_is_a_fixpoint() {
        let m = minimize(&[0], |c| c.is_empty() || c[0] == 0, 1000);
        // Deleting the single zero still fails, so the true minimum is
        // the empty sequence.
        assert!(m.choices.is_empty());
    }

    #[test]
    fn result_always_fails() {
        // Irregular predicate: fails when the sum is odd.
        let start = vec![7, 8, 2];
        let pred = |c: &[u64]| c.iter().sum::<u64>() % 2 == 1;
        assert!(pred(&start));
        let m = minimize(&start, pred, 100_000);
        assert!(pred(&m.choices), "shrunk case must still fail");
        assert_eq!(m.choices, vec![1]);
    }
}
