//! Hermetic verification subsystem for the TLR reproduction.
//!
//! Everything the repository previously outsourced to `proptest`,
//! `rand` and `criterion` lives here, with zero external dependencies,
//! so the whole workspace builds and tests offline:
//!
//! * [`source`] / [`gen`] — a minimal property-testing engine:
//!   composable generators draw from a recorded *choice stream* backed
//!   by [`tlr_sim::SimRng`] (SplitMix64), so every generated case is a
//!   pure function of a printed seed;
//! * [`shrink`] — a greedy choice-sequence shrinker: failures are
//!   minimized by deleting, zeroing and lowering recorded draws, which
//!   shrinks *through* any combinator composition;
//! * [`prop`] — the case runner: configurable case counts
//!   (`TLR_CHECK_CASES`), seed override (`TLR_CHECK_SEED`), panics
//!   converted into failures, and a reproduction line printed with
//!   every minimized counterexample. Case seeds are a pure function of
//!   (root seed, case index), so [`prop::check_with_pool`] can fan
//!   cases out across the [`tlr_sim::pool`] worker threads while
//!   reporting exactly what the serial runner would;
//! * [`oracle`] — the serializability oracle: a workload family whose
//!   critical sections are replayed under a single global lock in
//!   Rust (the serial reference) and additionally replayed in the
//!   machine's observed commit order, both compared word-for-word
//!   against the simulated machine's final memory;
//! * [`fuzz`] — the schedule-exploration fuzzer: perturbs seeds,
//!   per-run latencies, schemes, retention policies, processor counts
//!   and cache geometries, and reports the smallest failing
//!   (seed, config) pair via the shrinker;
//! * [`timing`] — a small host-time benchmark harness (mean / median /
//!   iteration counts, optional JSON output) replacing `criterion` for
//!   the `cargo bench` targets;
//! * [`diff`] — the differential engine-equivalence harness: runs a
//!   machine under both the discrete-event engine and the
//!   cycle-stepped oracle and demands byte-identical stats, traces,
//!   and final cycles, with a lockstep replay that reports the first
//!   divergent cycle.

pub mod diff;
pub mod fuzz;
pub mod gen;
pub mod oracle;
pub mod prop;
pub mod shrink;
pub mod source;
pub mod timing;

pub use prop::{check, check_with, check_with_pool, Config};
pub use source::Source;
