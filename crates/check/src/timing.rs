//! A small wall-clock benchmarking harness (the criterion
//! replacement).
//!
//! Each benchmark is auto-calibrated: the batch size doubles until one
//! batch exceeds a minimum duration, then several batches are timed
//! and the per-iteration mean/median/min are reported as a text table
//! or as JSON (`--json`). The harness deliberately has no statistics
//! beyond that — simulator benchmarks are macro-scale (whole runs of
//! thousands of simulated cycles), where median-of-batches is stable
//! enough to spot regressions.
//!
//! Benchmark targets using this harness must set `harness = false`
//! (and should set `test = false`) in `Cargo.toml`; cargo still passes
//! `--bench` on the command line, which [`TimingOpts::from_args`]
//! ignores.

use std::time::Instant;

pub use std::hint::black_box;

/// Harness options.
#[derive(Debug, Clone)]
pub struct TimingOpts {
    /// Timed batches per benchmark.
    pub samples: u32,
    /// Calibration target: smallest acceptable batch duration.
    pub min_batch_ns: u64,
    /// Emit JSON instead of the text table.
    pub json: bool,
    /// Worker count. Wall-clock measurement must stay at 1: timed
    /// batches sharing cores with sweep workers measure scheduler
    /// contention, not the simulator. The field exists so `--jobs`
    /// from shared sweep scripts is *rejected loudly* rather than
    /// silently ignored — see [`TimingOpts::validated`].
    pub jobs: usize,
}

impl Default for TimingOpts {
    fn default() -> Self {
        TimingOpts { samples: 7, min_batch_ns: 10_000_000, json: false, jobs: 1 }
    }
}

impl TimingOpts {
    /// Parses process arguments: `--quick` (3 samples, 1 ms batches),
    /// `--json`, `--jobs N` (anything but 1 is rejected when the suite
    /// starts); `--bench`/`--test` and free arguments are ignored so
    /// the binary survives however cargo invokes it.
    pub fn from_args() -> Self {
        let mut o = TimingOpts::default();
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--quick" => {
                    o.samples = 3;
                    o.min_batch_ns = 1_000_000;
                }
                "--json" => o.json = true,
                "--jobs" => {
                    let v = args.next().expect("--jobs needs a worker count");
                    o.jobs = v.parse().expect("bad job count");
                }
                _ => {}
            }
        }
        o
    }

    /// Checks that the options are usable for wall-clock measurement.
    ///
    /// # Errors
    ///
    /// Rejects `jobs != 1`: the parallel execution engine is for
    /// simulation sweeps (deterministic cycle counts), never for timed
    /// batches, whose numbers worker threads would pollute.
    pub fn validated(self) -> Result<Self, String> {
        if self.jobs != 1 {
            return Err(format!(
                "timing harness requires --jobs 1 (got {}): concurrent workers \
                 pollute wall-clock measurement; parallelism is for simulation \
                 sweeps, where the metric is deterministic cycle counts",
                self.jobs
            ));
        }
        Ok(self)
    }
}

/// One benchmark's result.
#[derive(Debug, Clone)]
pub struct Row {
    /// Benchmark name.
    pub name: String,
    /// Iterations per timed batch after calibration.
    pub iters: u64,
    /// Mean ns per iteration across batches.
    pub mean_ns: f64,
    /// Median ns per iteration across batches.
    pub median_ns: f64,
    /// Fastest batch's ns per iteration.
    pub min_ns: f64,
}

/// A named collection of benchmarks, printed on [`Suite::finish`].
pub struct Suite {
    name: String,
    opts: TimingOpts,
    rows: Vec<Row>,
}

impl Suite {
    /// A new suite.
    ///
    /// # Panics
    ///
    /// Panics if the options fail [`TimingOpts::validated`] (e.g.
    /// `--jobs` above 1 — measurement is pinned to one worker).
    pub fn new(name: &str, opts: TimingOpts) -> Self {
        let opts = opts.validated().unwrap_or_else(|e| panic!("{e}"));
        Suite { name: name.to_string(), opts, rows: Vec::new() }
    }

    /// Times `f`, auto-calibrating the batch size first.
    pub fn bench(&mut self, name: &str, mut f: impl FnMut()) {
        // Calibrate: double the batch until it takes long enough.
        let mut iters = 1u64;
        loop {
            let t = Instant::now();
            for _ in 0..iters {
                f();
            }
            let ns = t.elapsed().as_nanos() as u64;
            if ns >= self.opts.min_batch_ns || iters >= 1 << 20 {
                break;
            }
            iters *= 2;
        }
        let mut per_iter: Vec<f64> = (0..self.opts.samples.max(1))
            .map(|_| {
                let t = Instant::now();
                for _ in 0..iters {
                    f();
                }
                t.elapsed().as_nanos() as f64 / iters as f64
            })
            .collect();
        per_iter.sort_by(|a, b| a.total_cmp(b));
        let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        let median = per_iter[per_iter.len() / 2];
        self.rows.push(Row {
            name: name.to_string(),
            iters,
            mean_ns: mean,
            median_ns: median,
            min_ns: per_iter[0],
        });
    }

    /// Results so far.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Renders the suite as a JSON string.
    pub fn to_json(&self) -> String {
        let rows: Vec<String> = self
            .rows
            .iter()
            .map(|r| {
                format!(
                    "{{\"name\":\"{}\",\"iters\":{},\"mean_ns\":{:.1},\"median_ns\":{:.1},\"min_ns\":{:.1}}}",
                    r.name.replace('"', "'"),
                    r.iters,
                    r.mean_ns,
                    r.median_ns,
                    r.min_ns
                )
            })
            .collect();
        format!(
            "{{\"suite\":\"{}\",\"results\":[{}]}}",
            self.name.replace('"', "'"),
            rows.join(",")
        )
    }

    /// Prints the results (table or `--json`) to stdout.
    pub fn finish(self) {
        if self.opts.json {
            println!("{}", self.to_json());
            return;
        }
        println!("# {} ({} samples/bench)", self.name, self.opts.samples);
        println!("{:<44} {:>10} {:>14} {:>14} {:>14}", "benchmark", "iters", "mean ns", "median ns", "min ns");
        for r in &self.rows {
            println!(
                "{:<44} {:>10} {:>14.1} {:>14.1} {:>14.1}",
                r.name, r.iters, r.mean_ns, r.median_ns, r.min_ns
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> TimingOpts {
        TimingOpts { samples: 3, min_batch_ns: 1_000, json: false, jobs: 1 }
    }

    #[test]
    fn harness_rejects_parallel_jobs() {
        let opts = TimingOpts { jobs: 4, ..TimingOpts::default() };
        let err = opts.validated().expect_err("jobs above 1 must be rejected");
        assert!(err.contains("--jobs 1"), "{err}");
        assert!(err.contains("wall-clock"), "{err}");
        let result = std::panic::catch_unwind(|| {
            Suite::new("polluted", TimingOpts { jobs: 2, ..TimingOpts::default() })
        });
        assert!(result.is_err(), "Suite::new must refuse a parallel harness");
        assert!(TimingOpts::default().validated().is_ok(), "jobs=1 stays accepted");
    }

    #[test]
    fn bench_measures_and_orders_stats() {
        let mut s = Suite::new("unit", quick());
        s.bench("sum", || {
            black_box((0..100u64).sum::<u64>());
        });
        let r = &s.rows()[0];
        assert!(r.iters >= 1);
        assert!(r.min_ns <= r.median_ns + f64::EPSILON);
        assert!(r.min_ns <= r.mean_ns + f64::EPSILON);
        assert!(r.mean_ns.is_finite() && r.mean_ns >= 0.0);
    }

    #[test]
    fn json_output_names_every_bench() {
        let mut s = Suite::new("unit", quick());
        s.bench("alpha", || {
            black_box(1 + 1);
        });
        s.bench("beta", || {
            black_box(2 + 2);
        });
        let j = s.to_json();
        assert!(j.contains("\"suite\":\"unit\""), "{j}");
        assert!(j.contains("\"name\":\"alpha\""), "{j}");
        assert!(j.contains("\"name\":\"beta\""), "{j}");
        assert!(j.starts_with('{') && j.ends_with('}'));
    }

    #[test]
    fn calibration_grows_cheap_benches() {
        let mut s = Suite::new("unit", quick());
        s.bench("noop", || {
            black_box(0u64);
        });
        assert!(s.rows()[0].iters > 1, "a no-op must calibrate past one iteration");
    }
}
