//! The choice stream every generator draws from.
//!
//! A [`Source`] hands out `u64` draws and records them. In a fresh run
//! the draws come from a seeded [`SimRng`]; in a replay they come from
//! a recorded (possibly shrunk) sequence, with zeros once the sequence
//! is exhausted. Because generators are deterministic functions of the
//! stream, the shrinker never needs to understand generated *values* —
//! it only edits the recorded stream and regenerates.

use tlr_sim::SimRng;

/// A recorded stream of raw `u64` choices.
#[derive(Debug, Clone)]
pub struct Source {
    rng: Option<SimRng>,
    replay: Vec<u64>,
    pos: usize,
    recorded: Vec<u64>,
}

impl Source {
    /// A fresh stream drawing from `SimRng::new(seed)`.
    pub fn from_seed(seed: u64) -> Self {
        Source { rng: Some(SimRng::new(seed)), replay: Vec::new(), pos: 0, recorded: Vec::new() }
    }

    /// A replay of a recorded sequence. Draws beyond the end of the
    /// sequence return 0 — the smallest choice — so deleting a suffix
    /// is always a meaningful shrink.
    pub fn replay(choices: &[u64]) -> Self {
        Source { rng: None, replay: choices.to_vec(), pos: 0, recorded: Vec::new() }
    }

    /// Next raw choice.
    pub fn next_raw(&mut self) -> u64 {
        let v = if self.pos < self.replay.len() {
            self.replay[self.pos]
        } else {
            match &mut self.rng {
                Some(rng) => rng.next_u64(),
                None => 0,
            }
        };
        self.pos += 1;
        self.recorded.push(v);
        v
    }

    /// Everything drawn so far (the shrinker's substrate).
    pub fn choices(&self) -> &[u64] {
        &self.recorded
    }

    /// Uniform value in `[0, bound)`; 0 when `bound == 0`. Reduction
    /// is by modulo so that a raw choice of 0 always maps to the
    /// smallest value, which is what makes zeroing a valid shrink.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_raw() % bound
        }
    }

    /// Uniform `u64` in the inclusive range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn u64_in(&mut self, range: std::ops::RangeInclusive<u64>) -> u64 {
        let (lo, hi) = (*range.start(), *range.end());
        assert!(lo <= hi, "empty range {lo}..={hi}");
        lo + self.below(hi - lo + 1)
    }

    /// Uniform `usize` in the inclusive range.
    pub fn usize_in(&mut self, range: std::ops::RangeInclusive<usize>) -> usize {
        self.u64_in(*range.start() as u64..=*range.end() as u64) as usize
    }

    /// Uniform `u32` in the inclusive range.
    pub fn u32_in(&mut self, range: std::ops::RangeInclusive<u32>) -> u32 {
        self.u64_in(*range.start() as u64..=*range.end() as u64) as u32
    }

    /// A coin flip; a raw choice of 0 maps to `false`.
    pub fn bool(&mut self) -> bool {
        self.below(2) == 1
    }

    /// Picks one element of a non-empty slice; a raw choice of 0 maps
    /// to the first element, so put the simplest alternative first.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "pick from empty slice");
        &items[self.below(items.len() as u64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_source_is_deterministic() {
        let mut a = Source::from_seed(7);
        let mut b = Source::from_seed(7);
        for _ in 0..50 {
            assert_eq!(a.next_raw(), b.next_raw());
        }
        assert_eq!(a.choices(), b.choices());
    }

    #[test]
    fn replay_reproduces_then_pads_with_zero() {
        let mut a = Source::from_seed(3);
        let vals: Vec<u64> = (0..5).map(|_| a.u64_in(0..=1000)).collect();
        let mut b = Source::replay(a.choices());
        let again: Vec<u64> = (0..5).map(|_| b.u64_in(0..=1000)).collect();
        assert_eq!(vals, again);
        assert_eq!(b.u64_in(10..=20), 10, "exhausted replay draws the minimum");
        assert!(!b.bool());
    }

    #[test]
    fn ranges_are_respected() {
        let mut s = Source::from_seed(11);
        for _ in 0..500 {
            let v = s.u64_in(3..=9);
            assert!((3..=9).contains(&v));
        }
        assert_eq!(s.u64_in(5..=5), 5);
    }

    #[test]
    fn zero_choice_maps_to_minimum() {
        let mut s = Source::replay(&[0, 0, 0]);
        assert_eq!(s.u64_in(4..=19), 4);
        assert_eq!(*s.pick(&["first", "second"]), "first");
        assert!(!s.bool());
    }
}
