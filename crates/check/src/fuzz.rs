//! The schedule-exploration fuzzer.
//!
//! TLR bugs hide in *schedules*: a particular interleaving of snoop
//! arrivals, write-buffer pressure, and timestamp wraps. This module
//! perturbs everything that shapes a schedule — scheme, retention
//! policy, processor count, cache geometry, buffer sizes, timestamp
//! width, latencies, jitter, and the machine's own RNG seed — draws a
//! random lock-based workload, and checks the run against the
//! [`crate::oracle`]. Each failure carries the full `MachineConfig`
//! and workload in its message, and the runner's shrinker reduces the
//! choice stream, so what gets reported is the *smallest* failing
//! (seed, config, workload) triple found within the shrink budget.

use tlr_core::run::run_workload;
use tlr_sim::config::{
    Interconnect, MachineConfig, PolicyKind, RetentionPolicy, Scheme, UntimestampedPolicy,
};
use tlr_sim::fault::FaultConfig;
use tlr_sim::pool::{CellCoords, Job, Pool};
use tlr_sim::SimRng;
use tlr_workloads::micro;

use crate::gen;
use crate::oracle::OracleWorkload;
use crate::prop;
use crate::source::Source;

/// Draws a machine configuration from the choice stream. Every knob
/// that influences scheduling is varied; a raw stream of zeros maps to
/// the simplest machine (single-processor `Base` with paper-default
/// geometry), which is what the shrinker steers toward.
pub fn arbitrary_config(s: &mut Source) -> MachineConfig {
    let scheme = *s.pick(&Scheme::ALL);
    let procs = s.usize_in(1..=4);
    let mut cfg = if s.bool() {
        MachineConfig::small(scheme, procs)
    } else {
        MachineConfig::paper_default(scheme, procs)
    };
    cfg.retention = *s.pick(&[RetentionPolicy::Deferral, RetentionPolicy::Nack]);
    // Snooping first: the bus is the simpler, better-understood fabric,
    // so minimized counterexamples shed the directory before anything
    // else.
    cfg.interconnect = *s.pick(&[Interconnect::Snooping, Interconnect::Directory]);
    cfg.untimestamped_policy = *s.pick(&[
        UntimestampedPolicy::DeferAsLowestPriority,
        UntimestampedPolicy::Restart,
    ]);
    // 32 first: narrow timestamps are the exotic case worth shrinking
    // away from, wrap-arounds stress the windowed comparison.
    cfg.timestamp_bits = *s.pick(&[32, 16, 8, 6]);
    cfg.latency_jitter = s.u64_in(0..=4);
    // Latency perturbation is the heart of schedule exploration: the
    // same program traverses different global interleavings.
    cfg.latency.l2 = s.u64_in(6..=16);
    cfg.latency.memory = s.u64_in(40..=90);
    cfg.latency.snoop = s.u64_in(10..=30);
    cfg.latency.data_network = s.u64_in(10..=30);
    cfg.latency.bus_occupancy = s.u64_in(2..=6);
    cfg.write_buffer_lines = s.usize_in(4..=64);
    cfg.victim_entries = s.usize_in(1..=16);
    cfg.deferred_queue_entries = s.usize_in(2..=64);
    cfg.seed = s.next_raw();
    // Generous (the largest generated workloads quiesce well under 1M
    // cycles) but small enough that a genuine livelock's timeout
    // replays stay affordable during shrinking.
    cfg.max_cycles = 8_000_000;
    // Chaos last: a zero stream keeps faults off, so minimized
    // counterexamples shed the fault layer before anything else.
    cfg.faults = gen::fault_config(s);
    // Appended after every older knob so a zero stream still maps to
    // the paper's timestamp policy and shrinking sheds the alternative
    // contention managers first.
    cfg.policy = *s.pick(&PolicyKind::ALL);
    cfg
}

/// One fuzz case: random config, random oracle workload, full
/// serializability check. Suitable for [`prop::check`].
///
/// # Errors
///
/// Returns the oracle's violation report annotated with the config and
/// workload that produced it.
pub fn schedule_case(s: &mut Source) -> Result<(), String> {
    let cfg = arbitrary_config(s);
    let w = OracleWorkload::arbitrary(s, cfg.num_procs, 6);
    w.check(&cfg)
        .map_err(|e| format!("{e}\n    config: {cfg:?}\n    workload: {w:?}"))
}

/// One fuzz case over the library's own micro workloads (their
/// `validate` hooks are the oracle here). Exercises program shapes the
/// [`OracleWorkload`] family does not cover, e.g. the pointer-chasing
/// doubly linked list.
///
/// # Errors
///
/// Returns the workload's validation failure annotated with the config.
pub fn micro_case(s: &mut Source) -> Result<(), String> {
    let cfg = arbitrary_config(s);
    let per_proc = s.u64_in(1..=8);
    let total = cfg.num_procs as u64 * per_proc;
    let report = match s.below(3) {
        0 => run_workload(&cfg, &micro::single_counter(cfg.num_procs, total)),
        1 => run_workload(&cfg, &micro::multiple_counter(cfg.num_procs, total)),
        _ => run_workload(&cfg, &micro::doubly_linked_list(cfg.num_procs, total)),
    };
    report
        .validation
        .clone()
        .map_err(|e| format!("{e}\n    config: {cfg:?}"))
}

/// Runs `cases` oracle-backed schedule fuzz cases (honoring the
/// `TLR_CHECK_*` environment overrides) and panics with a minimized
/// (seed, config, workload) triple on the first violation. The shrink
/// budget is kept small because every candidate is a full simulation.
///
/// Cases fan out across the worker pool (`TLR_JOBS` or host
/// parallelism); each case's seed is a pure function of (root seed,
/// case index), so the batch behaves identically at any worker count.
pub fn fuzz_schedules(name: &str, cases: u32) {
    let mut cfg = prop::Config::from_env(cases);
    cfg.max_shrink_checks = 64;
    prop::check_with_pool(name, cfg, &Pool::from_env(), schedule_case);
}

/// Runs `cases` micro-workload fuzz cases, as [`fuzz_schedules`].
pub fn fuzz_micro(name: &str, cases: u32) {
    let mut cfg = prop::Config::from_env(cases);
    cfg.max_shrink_checks = 64;
    prop::check_with_pool(name, cfg, &Pool::from_env(), micro_case);
}

/// Cycle budget for the fault-matrix progress bound: every generated
/// workload quiesces well under this even at maximum chaos intensity,
/// so exceeding it means a transaction was starved.
pub const FAULT_MATRIX_BUDGET: u64 = 8_000_000;

/// One fault-matrix cell: a random workload on the given scheme with
/// all five fault kinds active at the given intensity level, checked
/// against the serializability oracle *and* the progress bound (the
/// oracle reports a timeout as "failed to quiesce", which here means
/// some transaction did not commit within the cycle budget).
///
/// # Errors
///
/// Returns the oracle's violation or starvation report annotated with
/// the config and workload.
fn fault_matrix_cell(
    scheme: Scheme,
    fault_seed: u64,
    level: u32,
    fabric: FaultMatrixFabric,
) -> Result<(), String> {
    let mut src = Source::from_seed(fault_seed);
    let retention =
        if fault_seed % 2 == 0 { RetentionPolicy::Deferral } else { RetentionPolicy::Nack };
    // Rotate the conflict policy across seeds so chaos adjudicates
    // every contention manager, not just the paper's timestamp order.
    let policy = PolicyKind::ALL[(fault_seed >> 2) as usize % PolicyKind::ALL.len()];
    // Snooping cells keep the original small-machine draws; directory
    // cells pin a full-width thread population (fewer iterations each,
    // so the cycle budget still means starvation, not load).
    let (interconnect, procs, w) = match fabric {
        FaultMatrixFabric::Snooping => {
            let procs = src.usize_in(2..=4);
            let w = OracleWorkload::arbitrary(&mut src, procs, 6);
            (Interconnect::Snooping, procs, w)
        }
        FaultMatrixFabric::Directory(procs) => {
            let w = OracleWorkload::arbitrary_with_procs(&mut src, procs, 2);
            (Interconnect::Directory, procs, w)
        }
    };
    let cfg = MachineConfig::builder()
        .scheme(scheme)
        .procs(procs)
        .retention(retention)
        .policy(policy)
        .interconnect(interconnect)
        .seed(src.next_raw())
        .max_cycles(FAULT_MATRIX_BUDGET)
        .faults(FaultConfig::intensity(fault_seed, level))
        .build();
    w.check(&cfg).map_err(|e| {
        format!(
            "fault matrix violation (scheme {scheme}, policy {policy}, fabric \
             {interconnect}/{procs}p, fault seed {fault_seed:#x}, intensity {level}): {e}\n    \
             config: {cfg:?}\n    workload: {w:?}"
        )
    })
}

/// Which ordering fabric a fault-matrix cell runs against. Cells
/// rotate through the bus and 32- and 64-processor directory machines
/// so chaos exercises the directed-invalidation paths at scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FaultMatrixFabric {
    Snooping,
    Directory(usize),
}

impl FaultMatrixFabric {
    fn for_seed_index(i: u32) -> Self {
        match i % 3 {
            0 => FaultMatrixFabric::Snooping,
            1 => FaultMatrixFabric::Directory(32),
            _ => FaultMatrixFabric::Directory(64),
        }
    }
}

/// Sweeps (workload × scheme × fault seed) through the serializability
/// oracle with every fault kind active — network jitter, bus
/// arbitration perturbation, capacity squeezes, deferral caps, and
/// spurious aborts. Intensity cycles through `1..=MAX_INTENSITY`
/// across seeds, the retention policy alternates by seed parity, and
/// cells fan out across `pool` (deterministically; cell seeds are pure
/// functions of `root_seed`).
///
/// # Panics
///
/// Panics on the first serializability violation or progress-bound
/// (starvation) failure.
pub fn fault_matrix(name: &str, root_seed: u64, seeds: u32, pool: &Pool) {
    let schemes = [Scheme::Base, Scheme::Sle, Scheme::Tlr];
    let jobs: Vec<Job<'_, Result<(), String>>> = (0..seeds)
        .flat_map(|i| {
            schemes.into_iter().map(move |scheme| {
                let fault_seed = SimRng::nth(root_seed, u64::from(i));
                let level = 1 + i % FaultConfig::MAX_INTENSITY;
                let fabric = FaultMatrixFabric::for_seed_index(i);
                let coords = CellCoords {
                    workload: format!("fault-matrix-{i}-{fabric:?}"),
                    scheme: scheme.label().to_string(),
                    procs: level as usize,
                    seed: fault_seed,
                };
                Job::new(coords, move |_| fault_matrix_cell(scheme, fault_seed, level, fabric))
            })
        })
        .collect();
    for cell in pool.scatter_indexed(jobs) {
        match cell {
            Ok(Ok(())) => {}
            Ok(Err(e)) => panic!("{name}: {e}"),
            Err(e) if e.cancelled => continue,
            Err(e) => panic!("{name}: fault-matrix cell failed: {e}"),
        }
    }
}

/// Runs a `cases`-sized schedule-fuzz batch rooted at `seed` through
/// `pool` — without stopping at failures — and folds every case's
/// (index, seed, choice count, verdict) into an FNV-1a 64 digest.
///
/// The digest is a pure function of the batch's outcomes, so any two
/// worker counts must produce the same 16-hex-digit string; the
/// reproducibility wall pins `jobs=1` against `jobs=4` with it.
pub fn batch_digest(seed: u64, cases: u32, pool: &Pool) -> String {
    let jobs: Vec<Job<'_, String>> = (0..cases)
        .map(|case| {
            let case_seed = prop::case_seed(seed, case);
            let coords = CellCoords {
                workload: "fuzz-batch".to_string(),
                scheme: "schedule".to_string(),
                procs: case as usize,
                seed: case_seed,
            };
            Job::new(coords, move |_| {
                let mut src = Source::from_seed(case_seed);
                let mut case_fn = schedule_case;
                let verdict = match prop::run_guarded(&mut case_fn, &mut src) {
                    Ok(()) => "ok".to_string(),
                    Err(e) => format!("err:{e}"),
                };
                format!("{case}:{case_seed:#x}:{}:{verdict}\n", src.choices().len())
            })
        })
        .collect();
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for cell in pool.scatter_indexed(jobs) {
        let line = cell.unwrap_or_else(|e| panic!("fuzz batch cell failed: {e}"));
        for b in line.bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x100_0000_01b3);
        }
    }
    format!("{hash:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_stream_is_the_simplest_config() {
        let mut s = Source::replay(&[]);
        let cfg = arbitrary_config(&mut s);
        assert_eq!(cfg.scheme, Scheme::ALL[0]);
        assert_eq!(cfg.num_procs, 1);
        assert_eq!(cfg.retention, RetentionPolicy::Deferral);
        assert_eq!(cfg.interconnect, Interconnect::Snooping);
        assert_eq!(cfg.timestamp_bits, 32);
        assert_eq!(cfg.seed, 0);
        assert_eq!(cfg.faults, FaultConfig::off(), "the simplest machine is fault-free");
    }

    #[test]
    fn fuzz_configs_reach_chaos() {
        let mut s = Source::from_seed(321);
        let mut levels = std::collections::HashSet::new();
        for _ in 0..200 {
            let cfg = arbitrary_config(&mut s);
            levels.insert(cfg.faults.enabled);
        }
        assert_eq!(levels.len(), 2, "sweep must cover both faulty and fault-free machines");
    }

    #[test]
    fn fault_matrix_smoke() {
        // A tiny deterministic slice of the matrix; CI and the root
        // tests run the full 50-seed sweep.
        fault_matrix("fault_matrix_smoke", 0xc4a0_5eed, 2, &Pool::serial());
    }

    #[test]
    fn fault_matrix_cells_are_deterministic() {
        // Same (scheme, seed, level, fabric) => same verdict; and the
        // cell actually runs a faulty machine.
        assert_eq!(
            fault_matrix_cell(Scheme::Tlr, 7, 4, FaultMatrixFabric::Snooping),
            fault_matrix_cell(Scheme::Tlr, 7, 4, FaultMatrixFabric::Snooping)
        );
    }

    #[test]
    fn fault_matrix_rotates_through_the_fabrics() {
        assert_eq!(FaultMatrixFabric::for_seed_index(0), FaultMatrixFabric::Snooping);
        assert_eq!(FaultMatrixFabric::for_seed_index(1), FaultMatrixFabric::Directory(32));
        assert_eq!(FaultMatrixFabric::for_seed_index(2), FaultMatrixFabric::Directory(64));
        assert_eq!(FaultMatrixFabric::for_seed_index(3), FaultMatrixFabric::Snooping);
    }

    #[test]
    fn directory_chaos_cell_passes_at_scale() {
        // One pinned 32-processor directory cell under full-intensity
        // chaos; the matrix sweeps many more in CI and the root tests.
        fault_matrix_cell(Scheme::Tlr, 0xd1c7_5eed, 4, FaultMatrixFabric::Directory(32))
            .expect("32-proc directory chaos cell");
    }

    #[test]
    fn config_draws_are_reproducible() {
        let mut a = Source::from_seed(77);
        let c1 = arbitrary_config(&mut a);
        let mut b = Source::replay(a.choices());
        let c2 = arbitrary_config(&mut b);
        assert_eq!(format!("{c1:?}"), format!("{c2:?}"));
    }

    #[test]
    fn configs_cover_all_schemes() {
        let mut s = Source::from_seed(123);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(arbitrary_config(&mut s).scheme.label());
        }
        assert_eq!(seen.len(), Scheme::ALL.len(), "sweep must reach every scheme");
    }
}
