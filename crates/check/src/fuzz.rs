//! The schedule-exploration fuzzer.
//!
//! TLR bugs hide in *schedules*: a particular interleaving of snoop
//! arrivals, write-buffer pressure, and timestamp wraps. This module
//! perturbs everything that shapes a schedule — scheme, retention
//! policy, processor count, cache geometry, buffer sizes, timestamp
//! width, latencies, jitter, and the machine's own RNG seed — draws a
//! random lock-based workload, and checks the run against the
//! [`crate::oracle`]. Each failure carries the full `MachineConfig`
//! and workload in its message, and the runner's shrinker reduces the
//! choice stream, so what gets reported is the *smallest* failing
//! (seed, config, workload) triple found within the shrink budget.

use tlr_core::run::run_workload;
use tlr_sim::config::{MachineConfig, RetentionPolicy, Scheme, UntimestampedPolicy};
use tlr_sim::pool::{CellCoords, Job, Pool};
use tlr_workloads::micro;

use crate::oracle::OracleWorkload;
use crate::prop;
use crate::source::Source;

/// Draws a machine configuration from the choice stream. Every knob
/// that influences scheduling is varied; a raw stream of zeros maps to
/// the simplest machine (single-processor `Base` with paper-default
/// geometry), which is what the shrinker steers toward.
pub fn arbitrary_config(s: &mut Source) -> MachineConfig {
    let scheme = *s.pick(&Scheme::ALL);
    let procs = s.usize_in(1..=4);
    let mut cfg = if s.bool() {
        MachineConfig::small(scheme, procs)
    } else {
        MachineConfig::paper_default(scheme, procs)
    };
    cfg.retention = *s.pick(&[RetentionPolicy::Deferral, RetentionPolicy::Nack]);
    cfg.untimestamped_policy = *s.pick(&[
        UntimestampedPolicy::DeferAsLowestPriority,
        UntimestampedPolicy::Restart,
    ]);
    // 32 first: narrow timestamps are the exotic case worth shrinking
    // away from, wrap-arounds stress the windowed comparison.
    cfg.timestamp_bits = *s.pick(&[32, 16, 8, 6]);
    cfg.latency_jitter = s.u64_in(0..=4);
    // Latency perturbation is the heart of schedule exploration: the
    // same program traverses different global interleavings.
    cfg.latency.l2 = s.u64_in(6..=16);
    cfg.latency.memory = s.u64_in(40..=90);
    cfg.latency.snoop = s.u64_in(10..=30);
    cfg.latency.data_network = s.u64_in(10..=30);
    cfg.latency.bus_occupancy = s.u64_in(2..=6);
    cfg.write_buffer_lines = s.usize_in(4..=64);
    cfg.victim_entries = s.usize_in(1..=16);
    cfg.deferred_queue_entries = s.usize_in(2..=64);
    cfg.seed = s.next_raw();
    // Generous (the largest generated workloads quiesce well under 1M
    // cycles) but small enough that a genuine livelock's timeout
    // replays stay affordable during shrinking.
    cfg.max_cycles = 8_000_000;
    cfg
}

/// One fuzz case: random config, random oracle workload, full
/// serializability check. Suitable for [`prop::check`].
///
/// # Errors
///
/// Returns the oracle's violation report annotated with the config and
/// workload that produced it.
pub fn schedule_case(s: &mut Source) -> Result<(), String> {
    let cfg = arbitrary_config(s);
    let w = OracleWorkload::arbitrary(s, cfg.num_procs, 6);
    w.check(&cfg)
        .map_err(|e| format!("{e}\n    config: {cfg:?}\n    workload: {w:?}"))
}

/// One fuzz case over the library's own micro workloads (their
/// `validate` hooks are the oracle here). Exercises program shapes the
/// [`OracleWorkload`] family does not cover, e.g. the pointer-chasing
/// doubly linked list.
///
/// # Errors
///
/// Returns the workload's validation failure annotated with the config.
pub fn micro_case(s: &mut Source) -> Result<(), String> {
    let cfg = arbitrary_config(s);
    let per_proc = s.u64_in(1..=8);
    let total = cfg.num_procs as u64 * per_proc;
    let report = match s.below(3) {
        0 => run_workload(&cfg, &micro::single_counter(cfg.num_procs, total)),
        1 => run_workload(&cfg, &micro::multiple_counter(cfg.num_procs, total)),
        _ => run_workload(&cfg, &micro::doubly_linked_list(cfg.num_procs, total)),
    };
    report
        .validation
        .clone()
        .map_err(|e| format!("{e}\n    config: {cfg:?}"))
}

/// Runs `cases` oracle-backed schedule fuzz cases (honoring the
/// `TLR_CHECK_*` environment overrides) and panics with a minimized
/// (seed, config, workload) triple on the first violation. The shrink
/// budget is kept small because every candidate is a full simulation.
///
/// Cases fan out across the worker pool (`TLR_JOBS` or host
/// parallelism); each case's seed is a pure function of (root seed,
/// case index), so the batch behaves identically at any worker count.
pub fn fuzz_schedules(name: &str, cases: u32) {
    let mut cfg = prop::Config::from_env(cases);
    cfg.max_shrink_checks = 64;
    prop::check_with_pool(name, cfg, &Pool::from_env(), schedule_case);
}

/// Runs `cases` micro-workload fuzz cases, as [`fuzz_schedules`].
pub fn fuzz_micro(name: &str, cases: u32) {
    let mut cfg = prop::Config::from_env(cases);
    cfg.max_shrink_checks = 64;
    prop::check_with_pool(name, cfg, &Pool::from_env(), micro_case);
}

/// Runs a `cases`-sized schedule-fuzz batch rooted at `seed` through
/// `pool` — without stopping at failures — and folds every case's
/// (index, seed, choice count, verdict) into an FNV-1a 64 digest.
///
/// The digest is a pure function of the batch's outcomes, so any two
/// worker counts must produce the same 16-hex-digit string; the
/// reproducibility wall pins `jobs=1` against `jobs=4` with it.
pub fn batch_digest(seed: u64, cases: u32, pool: &Pool) -> String {
    let jobs: Vec<Job<'_, String>> = (0..cases)
        .map(|case| {
            let case_seed = prop::case_seed(seed, case);
            let coords = CellCoords {
                workload: "fuzz-batch".to_string(),
                scheme: "schedule".to_string(),
                procs: case as usize,
                seed: case_seed,
            };
            Job::new(coords, move |_| {
                let mut src = Source::from_seed(case_seed);
                let mut case_fn = schedule_case;
                let verdict = match prop::run_guarded(&mut case_fn, &mut src) {
                    Ok(()) => "ok".to_string(),
                    Err(e) => format!("err:{e}"),
                };
                format!("{case}:{case_seed:#x}:{}:{verdict}\n", src.choices().len())
            })
        })
        .collect();
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for cell in pool.scatter_indexed(jobs) {
        let line = cell.unwrap_or_else(|e| panic!("fuzz batch cell failed: {e}"));
        for b in line.bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x100_0000_01b3);
        }
    }
    format!("{hash:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_stream_is_the_simplest_config() {
        let mut s = Source::replay(&[]);
        let cfg = arbitrary_config(&mut s);
        assert_eq!(cfg.scheme, Scheme::ALL[0]);
        assert_eq!(cfg.num_procs, 1);
        assert_eq!(cfg.retention, RetentionPolicy::Deferral);
        assert_eq!(cfg.timestamp_bits, 32);
        assert_eq!(cfg.seed, 0);
    }

    #[test]
    fn config_draws_are_reproducible() {
        let mut a = Source::from_seed(77);
        let c1 = arbitrary_config(&mut a);
        let mut b = Source::replay(a.choices());
        let c2 = arbitrary_config(&mut b);
        assert_eq!(format!("{c1:?}"), format!("{c2:?}"));
    }

    #[test]
    fn configs_cover_all_schemes() {
        let mut s = Source::from_seed(123);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(arbitrary_config(&mut s).scheme.label());
        }
        assert_eq!(seen.len(), Scheme::ALL.len(), "sweep must reach every scheme");
    }
}
