//! Differential engine-equivalence harness.
//!
//! The discrete-event engine's contract is *byte identity*: for any
//! configuration (including chaos streams) it must produce exactly the
//! statistics, trace events, and final cycle of the cycle-stepped
//! oracle — not merely statistically equivalent results. This module
//! runs a machine under both engines and compares everything; on a
//! mismatch it replays the pair in lockstep (the event machine jumps,
//! the stepped machine catches up cycle by cycle) and reports the
//! first divergent cycle with the first differing stat line, which is
//! usually enough to pinpoint the mis-classified wake source.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use tlr_core::Machine;
use tlr_sim::config::Engine;

/// A stable digest of a machine's event trace: length, drop count, and
/// every event's `Debug` rendering, hashed with the zero-keyed
/// standard hasher (deterministic across runs and platforms for a
/// fixed std version, which is all a same-process comparison needs).
pub fn trace_digest(m: &Machine) -> u64 {
    let mut h = DefaultHasher::new();
    let t = m.trace();
    t.len().hash(&mut h);
    t.dropped().hash(&mut h);
    for e in t.events() {
        format!("{e:?}").hash(&mut h);
    }
    h.finish()
}

/// Runs `build(EventDriven)` and `build(CycleStepped)` to completion
/// and demands byte identity: same run verdict (quiescence or timeout
/// cycle), same final cycle, equal [`tlr_sim::MachineStats`], and
/// equal trace digests.
///
/// The builder must honor the engine it is handed (a machine whose
/// config carries a different engine is rejected) and produce
/// identically configured machines otherwise.
///
/// # Errors
///
/// Returns a description of every mismatch, followed by the first
/// divergent cycle found by lockstep replay.
pub fn check_engines<F>(mut build: F) -> Result<(), String>
where
    F: FnMut(Engine) -> Machine,
{
    let mut ev = build(Engine::EventDriven);
    let mut cy = build(Engine::CycleStepped);
    assert_eq!(ev.config().engine, Engine::EventDriven, "builder ignored the engine");
    assert_eq!(cy.config().engine, Engine::CycleStepped, "builder ignored the engine");
    let rv = ev.run();
    let rc = cy.run();
    let mut errs = Vec::new();
    if rv != rc {
        errs.push(format!("run verdict: event {rv:?} != cycle-stepped {rc:?}"));
    }
    if ev.cycle() != cy.cycle() {
        errs.push(format!("final cycle: event {} != cycle-stepped {}", ev.cycle(), cy.cycle()));
    }
    if ev.stats() != cy.stats() {
        errs.push(format!(
            "stats differ; {}",
            first_stat_diff(ev.stats(), cy.stats()).unwrap_or_else(|| "(field not located)".into())
        ));
    }
    if trace_digest(&ev) != trace_digest(&cy) {
        errs.push("trace digests differ".to_string());
    }
    if errs.is_empty() {
        return Ok(());
    }
    Err(format!("{}\n    {}", errs.join("\n    "), first_divergence(&mut build)))
}

/// The first differing line between the two stats' pretty `Debug`
/// renderings — a readable pointer at the counter that drifted.
fn first_stat_diff(a: &tlr_sim::MachineStats, b: &tlr_sim::MachineStats) -> Option<String> {
    let a = format!("{a:#?}");
    let b = format!("{b:#?}");
    for (la, lb) in a.lines().zip(b.lines()) {
        if la != lb {
            return Some(format!("first differing field: event `{}` vs cycle-stepped `{}`", la.trim(), lb.trim()));
        }
    }
    (a.lines().count() != b.lines().count()).then(|| "stats renderings differ in length".into())
}

/// Lockstep shrink: re-runs both machines, advancing the event engine
/// one jump at a time and stepping the oracle up to the same cycle,
/// and reports the first cycle at which stats or traces diverge.
fn first_divergence<F>(build: &mut F) -> String
where
    F: FnMut(Engine) -> Machine,
{
    let mut ev = build(Engine::EventDriven);
    let mut cy = build(Engine::CycleStepped);
    let max = ev.config().max_cycles;
    while !ev.is_quiesced() && ev.cycle() < max {
        ev.advance_within(max);
        while cy.cycle() < ev.cycle() && !cy.is_quiesced() {
            cy.step();
        }
        if cy.cycle() != ev.cycle() {
            return format!(
                "first divergence: cycle-stepped machine quiesced at cycle {} while the \
                 event machine scheduled work at cycle {}",
                cy.cycle(),
                ev.cycle()
            );
        }
        // Mid-run settling is sound: it just moves already-owed idle
        // charges forward, which the wake path would do anyway.
        ev.settle_idle_charges();
        if ev.stats() != cy.stats() {
            return format!(
                "first divergence: cycle {}; {}",
                ev.cycle(),
                first_stat_diff(ev.stats(), cy.stats()).unwrap_or_else(|| "(field not located)".into())
            );
        }
        if trace_digest(&ev) != trace_digest(&cy) {
            return format!("first divergence: trace digests differ at cycle {}", ev.cycle());
        }
    }
    "lockstep replay found no divergence before finalization \
     (suspect finalize_stats or the quiescence/timeout exit paths)"
        .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Arc;

    use tlr_cpu::asm::Asm;
    use tlr_mem::addr::Addr;
    use tlr_sim::config::{MachineConfig, Scheme};

    fn counter_machine(engine: Engine, procs: usize) -> Machine {
        let mut a = Asm::new("inc");
        let r0 = a.reg();
        let r1 = a.reg();
        a.li(r0, 0x2000);
        a.load(r1, r0, 0);
        a.addi(r1, r1, 1);
        a.store(r1, r0, 0);
        a.done();
        let prog = Arc::new(a.finish());
        let cfg = MachineConfig::builder()
            .scheme(Scheme::Tlr)
            .procs(procs)
            .engine(engine)
            .max_cycles(1_000_000)
            .build();
        let mut m = Machine::new(cfg, vec![prog; procs], HashSet::from([Addr(0x100)]));
        m.enable_trace();
        m
    }

    #[test]
    fn engines_agree_on_a_contended_counter() {
        check_engines(|e| counter_machine(e, 3)).expect("engines must match");
    }

    #[test]
    fn digest_is_stable_and_order_sensitive() {
        let mut a = counter_machine(Engine::EventDriven, 2);
        let mut b = counter_machine(Engine::EventDriven, 2);
        a.run().unwrap();
        b.run().unwrap();
        assert_eq!(trace_digest(&a), trace_digest(&b), "identical runs digest identically");
        let empty = counter_machine(Engine::EventDriven, 2);
        assert_ne!(trace_digest(&a), trace_digest(&empty), "different traces differ");
    }
}
