//! The property runner.
//!
//! [`check`] runs a property over many generated cases and, on
//! failure, minimizes the counterexample with [`crate::shrink`] and
//! panics with a reproduction line. A property is any
//! `FnMut(&mut Source) -> Result<(), String>`; panics inside the
//! property (e.g. a simulator `assert!`) are caught and treated as
//! failures, so existing assertion-style checks work unchanged.
//!
//! Environment overrides, honored by [`Config::from_env`]:
//!
//! * `TLR_CHECK_CASES=N` — run N cases instead of the default;
//! * `TLR_CHECK_SEED=S` — root seed (every failure prints the exact
//!   value to set here to reproduce it deterministically).

use crate::shrink;
use crate::source::Source;

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of generated cases.
    pub cases: u32,
    /// Root seed; case `i` runs from a stream forked off this.
    pub seed: u64,
    /// Budget of candidate evaluations for the shrinker.
    pub max_shrink_checks: u64,
}

impl Config {
    /// Default configuration for a property wanting `default_cases`
    /// cases, with `TLR_CHECK_CASES` / `TLR_CHECK_SEED` overrides
    /// applied.
    pub fn from_env(default_cases: u32) -> Self {
        let cases = std::env::var("TLR_CHECK_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(default_cases);
        let seed = std::env::var("TLR_CHECK_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0x7a3d_5eed);
        Config { cases, seed, max_shrink_checks: 512 }
    }
}

/// Runs `prop` under a default [`Config`] of `cases` cases.
///
/// # Panics
///
/// Panics with the minimized counterexample if any case fails.
pub fn check<F>(name: &str, cases: u32, prop: F)
where
    F: FnMut(&mut Source) -> Result<(), String>,
{
    check_with(name, Config::from_env(cases), prop)
}

/// Runs `prop` under an explicit [`Config`].
///
/// # Panics
///
/// Panics with the minimized counterexample if any case fails.
pub fn check_with<F>(name: &str, cfg: Config, mut prop: F)
where
    F: FnMut(&mut Source) -> Result<(), String>,
{
    let mut case_seeds = tlr_sim::SimRng::new(cfg.seed);
    for case in 0..cfg.cases {
        let case_seed = case_seeds.next_u64();
        let mut src = Source::from_seed(case_seed);
        let outcome = run_guarded(&mut prop, &mut src);
        let err = match outcome {
            Ok(()) => continue,
            Err(e) => e,
        };
        // Minimize by editing the recorded choice stream.
        let recorded = src.choices().to_vec();
        let minimized = shrink::minimize(
            &recorded,
            |cand| {
                let mut s = Source::replay(cand);
                run_guarded(&mut prop, &mut s).is_err()
            },
            cfg.max_shrink_checks,
        );
        let mut replay = Source::replay(&minimized.choices);
        let min_err = run_guarded(&mut prop, &mut replay)
            .expect_err("minimized case must still fail");
        panic!(
            "property '{name}' failed\n\
             \x20 case {case}/{cases} (case seed {case_seed}); reproduce with \
             TLR_CHECK_SEED={root} TLR_CHECK_CASES={next}\n\
             \x20 original failure: {err}\n\
             \x20 minimized after {checks} candidate runs to {n} choices: {choices:?}\n\
             \x20 minimized failure: {min_err}",
            cases = cfg.cases,
            root = cfg.seed,
            next = case + 1,
            checks = minimized.checks,
            n = minimized.choices.len(),
            choices = minimized.choices,
        );
    }
}

/// Runs the property once, converting panics into `Err`.
fn run_guarded<F>(prop: &mut F, src: &mut Source) -> Result<(), String>
where
    F: FnMut(&mut Source) -> Result<(), String>,
{
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| prop(src)));
    match result {
        Ok(r) => r,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic".to_string());
            Err(format!("panic: {msg}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut ran = 0u32;
        check("always-passes", 25, |s| {
            ran += 1;
            let _ = s.u64_in(0..=100);
            Ok(())
        });
        assert_eq!(ran, 25);
    }

    #[test]
    fn failing_property_panics_with_repro_line() {
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            check("finds-big-value", 200, |s| {
                let v = s.u64_in(0..=1000);
                if v >= 500 {
                    Err(format!("saw {v}"))
                } else {
                    Ok(())
                }
            });
        }));
        let msg = match result {
            Err(p) => p.downcast_ref::<String>().cloned().expect("string panic"),
            Ok(()) => panic!("property should have failed"),
        };
        assert!(msg.contains("finds-big-value"), "{msg}");
        assert!(msg.contains("TLR_CHECK_SEED="), "{msg}");
        assert!(msg.contains("minimized"), "{msg}");
    }

    #[test]
    fn panicking_property_is_a_failure() {
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            check("panics", 5, |s| {
                let _ = s.bool();
                panic!("boom");
            });
        }));
        assert!(result.is_err());
    }

    #[test]
    fn seed_override_is_deterministic() {
        let collect = |seed: u64| {
            let mut vals = Vec::new();
            check_with(
                "collect",
                Config { cases: 10, seed, max_shrink_checks: 0 },
                |s| {
                    vals.push(s.u64_in(0..=u64::MAX - 1));
                    Ok(())
                },
            );
            vals
        };
        assert_eq!(collect(42), collect(42));
        assert_ne!(collect(42), collect(43));
    }
}
