//! The property runner.
//!
//! [`check`] runs a property over many generated cases and, on
//! failure, minimizes the counterexample with [`crate::shrink`] and
//! panics with a reproduction line. A property is any
//! `FnMut(&mut Source) -> Result<(), String>`; panics inside the
//! property (e.g. a simulator `assert!`) are caught and treated as
//! failures, so existing assertion-style checks work unchanged.
//!
//! Environment overrides, honored by [`Config::from_env`]:
//!
//! * `TLR_CHECK_CASES=N` — run N cases instead of the default;
//! * `TLR_CHECK_SEED=S` — root seed (every failure prints the exact
//!   value to set here to reproduce it deterministically).

use tlr_sim::pool::{CellCoords, Job, Pool};
use tlr_sim::SimRng;

use crate::shrink;
use crate::source::Source;

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of generated cases.
    pub cases: u32,
    /// Root seed; case `i` runs from a stream forked off this.
    pub seed: u64,
    /// Budget of candidate evaluations for the shrinker.
    pub max_shrink_checks: u64,
}

impl Config {
    /// Default configuration for a property wanting `default_cases`
    /// cases, with `TLR_CHECK_CASES` / `TLR_CHECK_SEED` overrides
    /// applied.
    pub fn from_env(default_cases: u32) -> Self {
        let cases = std::env::var("TLR_CHECK_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(default_cases);
        let seed = std::env::var("TLR_CHECK_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0x7a3d_5eed);
        Config { cases, seed, max_shrink_checks: 512 }
    }
}

/// Runs `prop` under a default [`Config`] of `cases` cases.
///
/// # Panics
///
/// Panics with the minimized counterexample if any case fails.
pub fn check<F>(name: &str, cases: u32, prop: F)
where
    F: FnMut(&mut Source) -> Result<(), String>,
{
    check_with(name, Config::from_env(cases), prop)
}

/// The seed for case `case` of a run rooted at `root`: a pure
/// function of (root seed, case index), so cases can be generated in
/// any order — or on any worker thread — and still draw the exact
/// stream the serial runner would have handed them.
/// (`SimRng::nth` indexes the same stream `SimRng::new(root)` walks,
/// so historical reproduction lines stay valid.)
pub fn case_seed(root: u64, case: u32) -> u64 {
    SimRng::nth(root, case as u64)
}

/// Runs `prop` under an explicit [`Config`].
///
/// # Panics
///
/// Panics with the minimized counterexample if any case fails.
pub fn check_with<F>(name: &str, cfg: Config, mut prop: F)
where
    F: FnMut(&mut Source) -> Result<(), String>,
{
    for case in 0..cfg.cases {
        let case_seed = case_seed(cfg.seed, case);
        let mut src = Source::from_seed(case_seed);
        let outcome = run_guarded(&mut prop, &mut src);
        let err = match outcome {
            Ok(()) => continue,
            Err(e) => e,
        };
        minimize_and_panic(name, &cfg, case, case_seed, err, src.choices(), &mut prop);
    }
}

/// Runs `prop` over the configured cases with the worker [`Pool`],
/// fanning independent cases out to threads. Case seeds come from
/// [`case_seed`], so every case draws exactly the stream the serial
/// [`check_with`] would hand it; the first failing case (lowest case
/// index — workers claim cases in submission order) cancels the rest
/// of the batch and is then minimized serially, producing the same
/// panic message `check_with` would.
///
/// The property must be `Fn + Sync` (shared read-only across
/// workers); with a 1-job pool this degenerates to the serial runner.
///
/// # Panics
///
/// Panics with the minimized counterexample if any case fails.
pub fn check_with_pool<F>(name: &str, cfg: Config, pool: &Pool, prop: F)
where
    F: Fn(&mut Source) -> Result<(), String> + Sync,
{
    if pool.jobs() <= 1 {
        return check_with(name, cfg, prop);
    }
    let prop_ref = &prop;
    let jobs: Vec<Job<'_, (u64, Result<(), String>, Vec<u64>)>> = (0..cfg.cases)
        .map(|case| {
            let coords = CellCoords {
                workload: name.to_string(),
                scheme: "prop-case".to_string(),
                procs: case as usize,
                seed: case_seed(cfg.seed, case),
            };
            Job::new(coords, move |token| {
                let seed = case_seed(cfg.seed, case);
                let mut src = Source::from_seed(seed);
                let mut adapter = |s: &mut Source| prop_ref(s);
                let outcome = run_guarded(&mut adapter, &mut src);
                if outcome.is_err() {
                    // Stop claiming later cases; already-claimed ones
                    // finish, and the lowest failing index wins below.
                    token.cancel();
                }
                (seed, outcome, src.choices().to_vec())
            })
        })
        .collect();
    for (case, cell) in pool.scatter_indexed(jobs).into_iter().enumerate() {
        match cell {
            // Cells skipped after an earlier failure: the failure
            // itself sits at a lower index and was handled first.
            Err(e) if e.cancelled => continue,
            // run_guarded already converts property panics to Err, so
            // a failed cell here is a runner bug; surface it loudly.
            Err(e) => panic!("property '{name}': worker failure: {e}"),
            Ok((seed, Err(err), recorded)) => {
                let mut adapter = |s: &mut Source| prop_ref(s);
                minimize_and_panic(name, &cfg, case as u32, seed, err, &recorded, &mut adapter);
            }
            Ok(_) => {}
        }
    }
}

/// Shrinks a failing case's recorded choice stream and panics with the
/// reproduction line (shared by the serial and pooled runners so their
/// failure reports are identical).
fn minimize_and_panic<F>(
    name: &str,
    cfg: &Config,
    case: u32,
    case_seed: u64,
    err: String,
    recorded: &[u64],
    prop: &mut F,
) -> !
where
    F: FnMut(&mut Source) -> Result<(), String>,
{
    // Minimize by editing the recorded choice stream.
    let minimized = shrink::minimize(
        recorded,
        |cand| {
            let mut s = Source::replay(cand);
            run_guarded(prop, &mut s).is_err()
        },
        cfg.max_shrink_checks,
    );
    let mut replay = Source::replay(&minimized.choices);
    let min_err = run_guarded(prop, &mut replay)
        .expect_err("minimized case must still fail");
    panic!(
        "property '{name}' failed\n\
         \x20 case {case}/{cases} (case seed {case_seed}); reproduce with \
         TLR_CHECK_SEED={root} TLR_CHECK_CASES={next}\n\
         \x20 original failure: {err}\n\
         \x20 minimized after {checks} candidate runs to {n} choices: {choices:?}\n\
         \x20 minimized failure: {min_err}",
        cases = cfg.cases,
        root = cfg.seed,
        next = case + 1,
        checks = minimized.checks,
        n = minimized.choices.len(),
        choices = minimized.choices,
    );
}

/// Runs the property once, converting panics into `Err`.
pub(crate) fn run_guarded<F>(prop: &mut F, src: &mut Source) -> Result<(), String>
where
    F: FnMut(&mut Source) -> Result<(), String>,
{
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| prop(src)));
    match result {
        Ok(r) => r,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic".to_string());
            Err(format!("panic: {msg}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut ran = 0u32;
        check("always-passes", 25, |s| {
            ran += 1;
            let _ = s.u64_in(0..=100);
            Ok(())
        });
        assert_eq!(ran, 25);
    }

    #[test]
    fn failing_property_panics_with_repro_line() {
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            check("finds-big-value", 200, |s| {
                let v = s.u64_in(0..=1000);
                if v >= 500 {
                    Err(format!("saw {v}"))
                } else {
                    Ok(())
                }
            });
        }));
        let msg = match result {
            Err(p) => p.downcast_ref::<String>().cloned().expect("string panic"),
            Ok(()) => panic!("property should have failed"),
        };
        assert!(msg.contains("finds-big-value"), "{msg}");
        assert!(msg.contains("TLR_CHECK_SEED="), "{msg}");
        assert!(msg.contains("minimized"), "{msg}");
    }

    #[test]
    fn panicking_property_is_a_failure() {
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            check("panics", 5, |s| {
                let _ = s.bool();
                panic!("boom");
            });
        }));
        assert!(result.is_err());
    }

    #[test]
    fn pooled_runner_draws_the_serial_case_seeds() {
        use std::sync::Mutex;
        let cfg = Config { cases: 24, seed: 0xfeed, max_shrink_checks: 0 };
        let serial: Mutex<Vec<u64>> = Mutex::new(Vec::new());
        check_with("serial-seeds", cfg.clone(), |s| {
            serial.lock().unwrap().push(s.u64_in(0..=u64::MAX - 1));
            Ok(())
        });
        let pooled: Mutex<std::collections::BTreeSet<u64>> = Mutex::new(Default::default());
        check_with_pool("pooled-seeds", cfg, &Pool::new(4), |s| {
            pooled.lock().unwrap().insert(s.u64_in(0..=u64::MAX - 1));
            Ok(())
        });
        let mut serial = serial.into_inner().unwrap();
        serial.sort_unstable();
        let pooled: Vec<u64> = pooled.into_inner().unwrap().into_iter().collect();
        assert_eq!(serial, pooled, "workers must draw exactly the serial seed set");
    }

    #[test]
    fn pooled_failure_report_matches_the_serial_report() {
        let cfg = Config { cases: 64, seed: 99, max_shrink_checks: 32 };
        let prop = |s: &mut Source| {
            let v = s.u64_in(0..=1000);
            if v >= 400 {
                Err(format!("saw {v}"))
            } else {
                Ok(())
            }
        };
        let grab = |r: std::thread::Result<()>| match r {
            Err(p) => p.downcast_ref::<String>().cloned().expect("string panic"),
            Ok(()) => panic!("property should have failed"),
        };
        let serial = grab(std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            check_with("same-name", cfg.clone(), prop);
        })));
        let pooled = grab(std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            check_with_pool("same-name", cfg, &Pool::new(4), prop);
        })));
        assert_eq!(serial, pooled, "parallel runs must report the same first failure");
    }

    #[test]
    fn seed_override_is_deterministic() {
        let collect = |seed: u64| {
            let mut vals = Vec::new();
            check_with(
                "collect",
                Config { cases: 10, seed, max_shrink_checks: 0 },
                |s| {
                    vals.push(s.u64_in(0..=u64::MAX - 1));
                    Ok(())
                },
            );
            vals
        };
        assert_eq!(collect(42), collect(42));
        assert_ne!(collect(42), collect(43));
    }
}
