//! The serializability oracle.
//!
//! The paper's central claim is that critical sections execute
//! serializably without lock acquisition. This module checks it
//! against ground truth instead of ad-hoc invariants: an
//! [`OracleWorkload`] is a family of lock-protected critical sections
//! whose effects are *modeled in Rust*, so the machine's final memory
//! can be compared word-for-word against:
//!
//! 1. **the serial reference** — the state produced by executing every
//!    critical section under a single global lock. The increment part
//!    of each section commutes, so every serial order produces the
//!    same sums and the reference is exact regardless of interleaving;
//! 2. **commit-order replay** — the non-commutative parts (a
//!    last-writer tag word and a running checksum of values *read*
//!    inside each section) are replayed in the serialization order the
//!    machine actually chose, reconstructed from the event trace
//!    (`TxnCommit` for elided sections, `LockReleased` outside a
//!    transaction for acquired ones). If no serial order consistent
//!    with the observed commit cycles explains the final state, the
//!    run was not serializable.
//!
//! Every scheme runs the same test&test&set binary (the paper's
//! methodology: MCS is a hardware configuration, not a different
//! oracle program).

use std::collections::HashSet;
use std::sync::Arc;

use tlr_core::Machine;
use tlr_cpu::asm::Asm;
use tlr_cpu::Program;
use tlr_mem::addr::Addr;
use tlr_sim::config::MachineConfig;
use tlr_sim::trace::TraceKind;
use tlr_sync::tatas::{self, TatasRegs};

use crate::gen;
use crate::source::Source;

/// Address of the single global lock.
pub const LOCK: u64 = 0x100;
/// Address of the last-writer tag word (its own cache line).
const TAG: u64 = 0x1840;
/// Base address of the shared words.
const WORDS_BASE: u64 = 0x2000;
/// Base address of the per-thread checksum words (one line each).
const PRIV_BASE: u64 = 0x8000;

/// One thread's critical-section shape, repeated `iters` times.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreadSpec {
    /// Indices of the shared words this thread increments.
    pub words: Vec<usize>,
    /// Index of the shared word whose value is read into the running
    /// checksum each iteration.
    pub read_ix: usize,
    /// Number of critical sections this thread executes.
    pub iters: u64,
    /// Post-release fairness delay bounds (cycles); `(_, 0)` disables.
    pub delay: (u32, u32),
}

/// A lock-protected workload with a Rust-side effect model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OracleWorkload {
    /// Number of shared words.
    pub num_words: usize,
    /// Whether the shared words are packed into one cache line (false
    /// sharing / maximal line conflicts) or padded one per line.
    pub packed: bool,
    /// One spec per processor.
    pub threads: Vec<ThreadSpec>,
}

impl OracleWorkload {
    /// Draws a random workload: word count, layout, per-thread subsets,
    /// iteration counts and delays.
    pub fn arbitrary(s: &mut Source, max_procs: usize, max_iters: u64) -> Self {
        let num_words = s.usize_in(1..=6);
        let packed = s.bool();
        let procs = s.usize_in(1..=max_procs.max(1));
        Self::arbitrary_threads(s, num_words, packed, procs, max_iters)
    }

    /// As [`Self::arbitrary`], but with *exactly* `procs` threads —
    /// scalability cells need full-width machines, not a drawn thread
    /// count.
    pub fn arbitrary_with_procs(s: &mut Source, procs: usize, max_iters: u64) -> Self {
        let num_words = s.usize_in(1..=6);
        let packed = s.bool();
        Self::arbitrary_threads(s, num_words, packed, procs, max_iters)
    }

    fn arbitrary_threads(
        s: &mut Source,
        num_words: usize,
        packed: bool,
        procs: usize,
        max_iters: u64,
    ) -> Self {
        let threads = (0..procs)
            .map(|_| ThreadSpec {
                words: gen::distinct_vec_of(s, 1..=3.min(num_words), |s| {
                    s.usize_in(0..=num_words - 1)
                }),
                read_ix: s.usize_in(0..=num_words - 1),
                iters: s.u64_in(1..=max_iters.max(1)),
                delay: (s.u32_in(0..=3), s.u32_in(0..=12)),
            })
            .collect();
        OracleWorkload { num_words, packed, threads }
    }

    /// Address of shared word `w`.
    pub fn word_addr(&self, w: usize) -> Addr {
        let stride = if self.packed { 8 } else { 64 };
        Addr(WORDS_BASE + w as u64 * stride)
    }

    /// Address of thread `t`'s checksum word.
    pub fn priv_addr(&self, t: usize) -> Addr {
        Addr(PRIV_BASE + t as u64 * 64)
    }

    /// Emits thread `t`'s program: `iters` critical sections, each
    /// incrementing the word subset, folding one read into a checksum
    /// register stored at the thread's private word, and writing the
    /// thread id into the shared tag word.
    fn program(&self, t: usize) -> Arc<Program> {
        let th = &self.threads[t];
        let mut a = Asm::new(format!("oracle-{t}"));
        let r = TatasRegs::alloc(&mut a);
        let lock = a.reg();
        let n = a.reg();
        let v = a.reg();
        let addr = a.reg();
        let acc = a.reg();
        let tagv = a.reg();
        tatas::init_regs(&mut a, &r);
        a.li(lock, LOCK);
        a.li(n, th.iters);
        a.li(acc, 0);
        a.li(tagv, t as u64 + 1);
        let top = a.here();
        tatas::acquire(&mut a, lock, &r);
        for &w in &th.words {
            a.li(addr, self.word_addr(w).0);
            a.load(v, addr, 0);
            a.addi(v, v, 1);
            a.store(v, addr, 0);
        }
        a.li(addr, self.word_addr(th.read_ix).0);
        a.load(v, addr, 0);
        a.add(acc, acc, v);
        a.li(addr, self.priv_addr(t).0);
        a.store(acc, addr, 0);
        a.li(addr, TAG);
        a.store(tagv, addr, 0);
        tatas::release(&mut a, lock, &r);
        if th.delay.1 > 0 {
            a.rand_delay(th.delay.0.min(th.delay.1), th.delay.1);
        }
        a.addi(n, n, -1);
        a.bne(n, r.zero, top);
        a.done();
        Arc::new(a.finish())
    }

    /// Runs the workload under `cfg` (processor count is taken from
    /// the workload) and applies both oracle checks.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violation: a timeout, a
    /// shared word differing from the serial reference, a completion
    /// count mismatch, or a final state no commit-consistent serial
    /// order explains. The failing run's transaction span log is
    /// appended so a minimized counterexample is diagnosable without a
    /// rerun (the propagating `TLR_CHECK_SEED` line reproduces it).
    pub fn check(&self, cfg: &MachineConfig) -> Result<(), String> {
        let mut m = self.build_machine(cfg);
        let result = m
            .run()
            .map_err(|e| format!("machine failed to quiesce: {e}"))
            .and_then(|()| self.check_quiesced(&m));
        result.map_err(|e| {
            format!("{e}\n--- transaction span log of the failing run ---\n{}", m.span_log().dump())
        })
    }

    fn check_quiesced(&self, m: &Machine) -> Result<(), String> {
        // Check 1: the serial reference. Executing all critical
        // sections under one global lock in any order yields these
        // sums, because increments commute.
        for w in 0..self.num_words {
            let expect: u64 = self
                .threads
                .iter()
                .filter(|t| t.words.contains(&w))
                .map(|t| t.iters)
                .sum();
            let got = m.final_word(self.word_addr(w));
            if got != expect {
                return Err(format!(
                    "shared word {w} @ {}: machine {got} != serial reference {expect}",
                    self.word_addr(w)
                ));
            }
        }
        let lock = m.final_word(Addr(LOCK));
        if lock != 0 {
            return Err(format!("lock word left as {lock}"));
        }

        // Check 2: commit-order replay of the non-commutative state.
        let completions = completion_order(&m);
        let mut counts = vec![0u64; self.threads.len()];
        for &(_, t) in &completions {
            counts[t] += 1;
        }
        for (t, th) in self.threads.iter().enumerate() {
            if counts[t] != th.iters {
                return Err(format!(
                    "thread {t}: {} critical-section completions in trace, expected {}",
                    counts[t], th.iters
                ));
            }
        }
        self.check_replay(&m, &completions)
    }

    /// Builds the machine for this workload (trace enabled, processor
    /// count forced to the thread count) without running it.
    pub fn build_machine(&self, cfg: &MachineConfig) -> Machine {
        let mut cfg = cfg.clone();
        cfg.num_procs = self.threads.len();
        let programs = (0..self.threads.len()).map(|t| self.program(t)).collect();
        let mut m = Machine::new(cfg, programs, HashSet::from([Addr(LOCK)]));
        m.enable_trace();
        m
    }

    /// Replays the critical sections in `order` against the Rust model
    /// and compares every modeled word with the machine.
    fn replay_matches(&self, m: &Machine, order: &[usize]) -> Result<(), String> {
        let procs = self.threads.len();
        let mut words = vec![0u64; self.num_words];
        let mut tag = 0u64;
        let mut acc = vec![0u64; procs];
        let mut privs = vec![0u64; procs];
        for &t in order {
            let th = &self.threads[t];
            for &w in &th.words {
                words[w] += 1;
            }
            acc[t] += words[th.read_ix];
            privs[t] = acc[t];
            tag = t as u64 + 1;
        }
        for (w, &expect) in words.iter().enumerate() {
            let got = m.final_word(self.word_addr(w));
            if got != expect {
                return Err(format!("replay: word {w} machine {got} != model {expect}"));
            }
        }
        let got_tag = m.final_word(Addr(TAG));
        if got_tag != tag {
            return Err(format!("replay: tag machine {got_tag} != model {tag}"));
        }
        for (t, &expect) in privs.iter().enumerate() {
            let got = m.final_word(self.priv_addr(t));
            if got != expect {
                return Err(format!("replay: thread {t} checksum machine {got} != model {expect}"));
            }
        }
        Ok(())
    }

    /// Applies [`Self::replay_matches`] to the recorded completion
    /// order; on mismatch, searches the (small) space of orders that
    /// permute only same-cycle completions before giving up — two
    /// non-conflicting sections may commit in the same cycle, and then
    /// the trace's intra-cycle order is bookkeeping, not serialization.
    fn check_replay(&self, m: &Machine, completions: &[(u64, usize)]) -> Result<(), String> {
        let order: Vec<usize> = completions.iter().map(|&(_, t)| t).collect();
        let first_err = match self.replay_matches(m, &order) {
            Ok(()) => return Ok(()),
            Err(e) => e,
        };
        let mut groups: Vec<Vec<usize>> = Vec::new();
        let mut last_cycle = None;
        for &(cycle, t) in completions {
            if last_cycle == Some(cycle) {
                groups.last_mut().expect("group exists for repeated cycle").push(t);
            } else {
                groups.push(vec![t]);
                last_cycle = Some(cycle);
            }
        }
        let mut budget = 2048usize;
        let mut prefix = Vec::with_capacity(order.len());
        if self.search_orders(m, &groups, 0, &mut prefix, &mut budget) {
            Ok(())
        } else {
            Err(format!("{first_err} (no commit-consistent serial order matches)"))
        }
    }

    fn search_orders(
        &self,
        m: &Machine,
        groups: &[Vec<usize>],
        idx: usize,
        prefix: &mut Vec<usize>,
        budget: &mut usize,
    ) -> bool {
        if *budget == 0 {
            return false;
        }
        if idx == groups.len() {
            *budget -= 1;
            return self.replay_matches(m, prefix).is_ok();
        }
        for perm in permutations(&groups[idx]) {
            let len = prefix.len();
            prefix.extend(perm);
            if self.search_orders(m, groups, idx + 1, prefix, budget) {
                return true;
            }
            prefix.truncate(len);
        }
        false
    }
}

/// Extracts the order in which critical sections completed from the
/// event trace: a `TxnCommit` (elided section) or a `LockReleased` of
/// the global lock outside any transaction (acquired section). Release
/// stores recorded *inside* a transaction belong to attempts that may
/// still restart, so only the commit counts for those.
fn completion_order(m: &Machine) -> Vec<(u64, usize)> {
    let mut in_txn = vec![false; m.config().num_procs];
    let mut out = Vec::new();
    for e in m.trace().events() {
        match e.kind {
            TraceKind::TxnStart { .. } => in_txn[e.node] = true,
            TraceKind::TxnRestart { .. } | TraceKind::TxnFallback { .. } => in_txn[e.node] = false,
            TraceKind::TxnCommit { .. } => {
                out.push((e.cycle, e.node));
                in_txn[e.node] = false;
            }
            TraceKind::LockReleased { lock_addr } if lock_addr == LOCK && !in_txn[e.node] => {
                out.push((e.cycle, e.node));
            }
            _ => {}
        }
    }
    out
}

/// All permutations of a small slice.
fn permutations(items: &[usize]) -> Vec<Vec<usize>> {
    if items.len() <= 1 {
        return vec![items.to_vec()];
    }
    let mut out = Vec::new();
    for (i, &head) in items.iter().enumerate() {
        let mut rest = items.to_vec();
        rest.remove(i);
        for mut tail in permutations(&rest) {
            tail.insert(0, head);
            out.push(tail);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlr_sim::config::Scheme;

    fn fixed_workload(procs: usize) -> OracleWorkload {
        OracleWorkload {
            num_words: 3,
            packed: false,
            threads: (0..procs)
                .map(|t| ThreadSpec {
                    words: vec![t % 3, (t + 1) % 3],
                    read_ix: 0,
                    iters: 6,
                    delay: (1, 8),
                })
                .collect(),
        }
    }

    #[test]
    fn oracle_accepts_every_scheme() {
        for scheme in Scheme::ALL {
            let mut cfg = MachineConfig::paper_default(scheme, 3);
            cfg.max_cycles = 50_000_000;
            fixed_workload(3).check(&cfg).unwrap_or_else(|e| panic!("{scheme}: {e}"));
        }
    }

    #[test]
    fn oracle_accepts_single_thread() {
        let mut cfg = MachineConfig::small(Scheme::Tlr, 1);
        cfg.max_cycles = 50_000_000;
        fixed_workload(1).check(&cfg).expect("single-thread oracle");
    }

    #[test]
    fn replay_model_is_order_sensitive() {
        // Two threads, both writing the tag: the model must
        // distinguish the two serial orders.
        let w = OracleWorkload {
            num_words: 1,
            packed: false,
            threads: vec![
                ThreadSpec { words: vec![0], read_ix: 0, iters: 1, delay: (0, 0) },
                ThreadSpec { words: vec![0], read_ix: 0, iters: 1, delay: (0, 0) },
            ],
        };
        // Model states for order [0, 1] vs [1, 0] differ in the tag
        // and in the checksums (the second reader sees 2, not 1).
        let mut cfg = MachineConfig::paper_default(Scheme::Base, 2);
        cfg.max_cycles = 50_000_000;
        w.check(&cfg).expect("base run satisfies some serial order");
    }

    #[test]
    fn permutations_cover_the_group() {
        let p = permutations(&[1, 2, 3]);
        assert_eq!(p.len(), 6);
        assert!(p.contains(&vec![3, 1, 2]));
    }

    #[test]
    fn arbitrary_workloads_are_well_formed() {
        let mut s = Source::from_seed(5);
        for _ in 0..50 {
            let w = OracleWorkload::arbitrary(&mut s, 4, 8);
            assert!(!w.threads.is_empty() && w.threads.len() <= 4);
            for th in &w.threads {
                assert!(!th.words.is_empty());
                assert!(th.words.iter().all(|&x| x < w.num_words));
                assert!(th.read_ix < w.num_words);
                assert!(th.iters >= 1 && th.iters <= 8);
            }
        }
    }
}
