//! Generator combinators.
//!
//! A generator is any `FnMut(&mut Source) -> T`; composition is
//! ordinary closure composition, and shrinking comes for free because
//! all randomness flows through the [`Source`] choice stream. This
//! module adds the collection-shaped combinators that proptest
//! provided (`vec`, tuples come free in Rust, `sample::select` is
//! [`Source::pick`]).

use tlr_sim::fault::FaultConfig;

use crate::source::Source;

/// A vector whose length is drawn from `len` and whose elements come
/// from `item`. The length draw happens first, so shrinking the first
/// recorded choice shortens the vector.
pub fn vec_of<T>(
    s: &mut Source,
    len: std::ops::RangeInclusive<usize>,
    mut item: impl FnMut(&mut Source) -> T,
) -> Vec<T> {
    let n = s.usize_in(len);
    (0..n).map(|_| item(s)).collect()
}

/// A set-like vector of distinct values drawn from `item`, between
/// `min` and `max` entries; duplicates are skipped, so the result may
/// be shorter than requested when the value space is small.
pub fn distinct_vec_of<T: PartialEq>(
    s: &mut Source,
    len: std::ops::RangeInclusive<usize>,
    mut item: impl FnMut(&mut Source) -> T,
) -> Vec<T> {
    let n = s.usize_in(len);
    let mut out: Vec<T> = Vec::with_capacity(n);
    for _ in 0..n {
        let v = item(s);
        if !out.contains(&v) {
            out.push(v);
        }
    }
    out
}

/// One of the given alternatives, weighted uniformly.
pub fn one_of<'a, T: Clone>(s: &mut Source, items: &'a [T]) -> T {
    s.pick(items).clone()
}

/// A fault configuration drawn from the choice stream: an intensity
/// level in `0..=MAX_INTENSITY` and a fault seed. A zero stream maps
/// to [`FaultConfig::off`], so the shrinker steers toward fault-free
/// machines.
pub fn fault_config(s: &mut Source) -> FaultConfig {
    let level = s.u32_in(0..=FaultConfig::MAX_INTENSITY);
    if level == 0 {
        FaultConfig::off()
    } else {
        FaultConfig::intensity(s.next_raw(), level)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_of_respects_length_bounds() {
        let mut s = Source::from_seed(1);
        for _ in 0..100 {
            let v = vec_of(&mut s, 2..=5, |s| s.u64_in(0..=9));
            assert!((2..=5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn distinct_vec_has_no_duplicates() {
        let mut s = Source::from_seed(2);
        for _ in 0..100 {
            let v = distinct_vec_of(&mut s, 1..=6, |s| s.u64_in(0..=3));
            let mut seen = std::collections::HashSet::new();
            assert!(v.iter().all(|x| seen.insert(*x)));
            assert!(!v.is_empty());
        }
    }

    #[test]
    fn fault_config_zero_stream_is_off() {
        let mut s = Source::replay(&[]);
        assert_eq!(fault_config(&mut s), FaultConfig::off());
        let mut rand = Source::from_seed(5);
        let mut saw_on = false;
        let mut saw_off = false;
        for _ in 0..50 {
            let f = fault_config(&mut rand);
            saw_on |= f.enabled;
            saw_off |= !f.enabled;
        }
        assert!(saw_on && saw_off, "draws must cover both chaos and calm");
    }

    #[test]
    fn generators_compose_and_replay() {
        let generate = |s: &mut Source| {
            vec_of(s, 1..=3, |s| (s.bool(), vec_of(s, 0..=2, |s| s.u32_in(1..=8))))
        };
        let mut a = Source::from_seed(9);
        let v1 = generate(&mut a);
        let mut b = Source::replay(a.choices());
        let v2 = generate(&mut b);
        assert_eq!(v1, v2, "replayed composite generator must reproduce");
    }
}
